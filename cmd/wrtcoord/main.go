// Command wrtcoord fronts a fleet of wrtserved workers with the identical
// /v1/runs HTTP/JSON API — a drop-in replacement for a single wrtserved
// that shards work across machines. Scenarios are routed by content hash on
// a consistent-hash ring, so identical specs always land on the same worker
// and the per-worker LRU caches compose into one cluster-wide exact cache.
// Dead workers are ejected by health probes and their jobs redispatched to
// the ring's next live owner; determinism keeps failover results
// byte-identical.
//
//	wrtcoord -addr :8090 -worker a=http://host1:8080 -worker b=http://host2:8080
//
// Workers can join a running cluster: POST /v1/workers {"id","url"} rebuilds
// the ring and the rebalancer (-rebalance) asks each new owner to pull its
// key range from prior owners' durable stores, so cache affinity survives
// membership changes.
//
//	curl -s localhost:8090/healthz
//	curl -s -X POST localhost:8090/v1/runs -d '{"scenarios":[{"N":10,"Seed":1}]}'
//	curl -s localhost:8090/metrics
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"github.com/rtnet/wrtring/internal/cluster"
	"github.com/rtnet/wrtring/internal/serve"
)

// workerFlags collects repeated -worker id=url flags.
type workerFlags []cluster.WorkerSpec

func (w *workerFlags) String() string {
	parts := make([]string, len(*w))
	for i, spec := range *w {
		parts[i] = spec.ID + "=" + spec.URL
	}
	return strings.Join(parts, ",")
}

func (w *workerFlags) Set(v string) error {
	id, url, ok := strings.Cut(v, "=")
	if !ok || id == "" || url == "" {
		return fmt.Errorf("worker %q is not id=url", v)
	}
	*w = append(*w, cluster.WorkerSpec{ID: id, URL: url})
	return nil
}

func main() {
	var workers workerFlags
	flag.Var(&workers, "worker", "worker as id=url (repeatable)")
	addr := flag.String("addr", ":8090", "listen address")
	maxPerWorker := flag.Int("max-per-worker", 32, "outstanding-job bound per worker shard")
	maxInflight := flag.Int("max-inflight", 4, "concurrent dispatches per worker")
	replicas := flag.Int("replicas", cluster.DefaultReplicas, "virtual nodes per worker on the hash ring")
	poll := flag.Duration("poll", 20*time.Millisecond, "job-completion poll interval")
	health := flag.Duration("health", time.Second, "health-probe interval")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request timeout to workers")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for outstanding jobs")
	httpTimeout := flag.Duration("http-timeout", 30*time.Second, "per-request deadline on inbound API endpoints (debug endpoints exempt)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logEntries := flag.Int("log-entries", 0, "access-log ring size for /debug/log (0 = default)")
	maxBatchPoints := flag.Int64("max-batch-points", serve.DefaultMaxBatchPoints, "max points one /v1/batches grid may expand to")
	rebalance := flag.Duration("rebalance", 5*time.Second, "shard-handoff planning interval after membership changes (0 = disabled)")
	handoffBatch := flag.Int("handoff-batch", cluster.DefaultHandoffBatch, "max keys per pull request sent to one worker during rebalancing")
	flag.Parse()

	if len(workers) == 0 {
		fmt.Fprintln(os.Stderr, "wrtcoord: at least one -worker id=url is required")
		os.Exit(2)
	}

	coord, err := cluster.New(cluster.Config{
		Workers:           workers,
		MaxPerWorker:      *maxPerWorker,
		MaxInflight:       *maxInflight,
		Replicas:          *replicas,
		PollInterval:      *poll,
		HealthInterval:    *health,
		RequestTimeout:    *reqTimeout,
		HTTPTimeout:       *httpTimeout,
		EnablePprof:       *pprofOn,
		LogEntries:        *logEntries,
		MaxBatchPoints:    *maxBatchPoints,
		RebalanceInterval: *rebalance,
		HandoffBatch:      *handoffBatch,
	})
	if err != nil {
		log.Fatalf("wrtcoord: %v", err)
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           coord.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		log.Printf("wrtcoord: listening on %s fronting %d workers (%s)",
			*addr, len(workers), workers.String())
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		if err != nil {
			log.Fatalf("wrtcoord: %v", err)
		}
		return
	case <-ctx.Done():
	}

	log.Printf("wrtcoord: signal received, draining (deadline %s)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("wrtcoord: http shutdown: %v", err)
	}
	report := coord.Drain(*drain)
	st := coord.Stats()
	log.Printf("wrtcoord: drained: completed=%d failed=%d dropped=%d deadlineExceeded=%v",
		report.Completed, report.Failed, report.Dropped, report.DeadlineExceeded)
	log.Printf("wrtcoord: totals: admitted=%d completed=%d failed=%d dropped=%d rejected=%d redispatched=%d remoteCacheHits=%d",
		st.Admitted, st.Completed, st.Failed, st.Dropped, st.Rejected, st.Redispatched, st.RemoteCacheHits)
	if st.Admitted != st.Completed+st.Failed+st.Dropped {
		fmt.Fprintf(os.Stderr, "wrtcoord: accounting imbalance: admitted %d != completed %d + failed %d + dropped %d\n",
			st.Admitted, st.Completed, st.Failed, st.Dropped)
		os.Exit(1)
	}
}
