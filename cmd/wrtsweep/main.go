// Command wrtsweep runs a parameter sweep across a worker pool and prints
// the results as CSV — the bulk-experiment front end for the repository.
//
// Examples:
//
//	wrtsweep -over n -values 5,10,20,50 -protocols both
//	wrtsweep -over seed -values 1,2,3,4,5 -n 16 -load saturate
//	wrtsweep -over quota -values 1:1,2:2,4:2 -n 12
//
// With -server the grid is executed remotely against a wrtserved instance
// or a wrtcoord cluster (both speak the same /v1/runs API), so repeated
// sweeps hit the service's content-addressed cache instead of re-simulating:
//
//	wrtsweep -over n -values 5,10,20,50 -server http://localhost:8090
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	wrtring "github.com/rtnet/wrtring"
	"github.com/rtnet/wrtring/internal/serve"
	"github.com/rtnet/wrtring/sweep"
)

func main() {
	over := flag.String("over", "n", "sweep dimension: n | seed | quota")
	values := flag.String("values", "5,10,20", "comma-separated values (quota uses l:k pairs)")
	protocols := flag.String("protocols", "wrt", "wrt | tpt | both")
	n := flag.Int("n", 8, "stations (fixed dimensions)")
	l := flag.Int("l", 2, "real-time quota")
	k := flag.Int("k", 2, "best-effort quota")
	dur := flag.Int64("dur", 30_000, "slots per run")
	seed := flag.Uint64("seed", 1, "base seed")
	load := flag.String("load", "cbr", "cbr | saturate | none")
	jobs := flag.Int("jobs", runtime.NumCPU(),
		"parallel simulation workers; 1 reproduces the serial run byte-for-byte")
	progress := flag.Bool("progress", false, "report per-run completion on stderr")
	server := flag.String("server", "",
		"run the sweep remotely against a wrtserved or wrtcoord URL instead of in-process")
	flag.Parse()

	base := wrtring.Scenario{N: *n, L: *l, K: *k, Seed: *seed, Duration: *dur}
	switch *load {
	case "cbr":
		base.Sources = []wrtring.Source{{Station: wrtring.AllStations, Kind: wrtring.CBR,
			Class: wrtring.Premium, Period: 50, Dest: wrtring.Opposite()}}
	case "saturate":
		base.Sources = []wrtring.Source{
			{Station: wrtring.AllStations, Class: wrtring.Premium, Dest: wrtring.Opposite(), Preload: int(*dur)},
			{Station: wrtring.AllStations, Class: wrtring.BestEffort, Dest: wrtring.Opposite(), Preload: int(*dur)},
		}
	case "none":
	default:
		fail("unknown load %q", *load)
	}

	var pts []sweep.Point
	fields := strings.Split(*values, ",")
	switch *over {
	case "n":
		var ns []int
		for _, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 3 {
				fail("bad station count %q", f)
			}
			ns = append(ns, v)
		}
		pts = sweep.OverN(base, ns)
	case "seed":
		var seeds []uint64
		for _, f := range fields {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fail("bad seed %q", f)
			}
			seeds = append(seeds, v)
		}
		pts = sweep.OverSeeds(base, seeds)
	case "quota":
		var lks [][2]int
		for _, f := range fields {
			parts := strings.SplitN(strings.TrimSpace(f), ":", 2)
			if len(parts) != 2 {
				fail("quota value %q is not l:k", f)
			}
			lv, err1 := strconv.Atoi(parts[0])
			kv, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				fail("quota value %q is not numeric l:k", f)
			}
			lks = append(lks, [2]int{lv, kv})
		}
		pts = sweep.OverQuota(base, lks)
	default:
		fail("unknown sweep dimension %q", *over)
	}

	switch *protocols {
	case "wrt":
	case "tpt":
		for i := range pts {
			pts[i].Scenario.Protocol = wrtring.TPT
		}
	case "both":
		pts = sweep.OverProtocol(pts)
	default:
		fail("unknown protocols %q", *protocols)
	}

	var onDone func(done, total int, o sweep.Outcome)
	if *progress {
		onDone = func(done, total int, o sweep.Outcome) {
			status := "ok"
			if o.Err != nil {
				status = o.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s: %s\n", done, total, o.Point.Name, status)
		}
	}
	var outs []sweep.Outcome
	if *server != "" {
		outs = runRemote(*server, pts, onDone)
	} else {
		outs = sweep.RunProgress(pts, *jobs, onDone)
	}
	fmt.Print(sweep.CSV(outs))
	for _, o := range outs {
		if o.Err != nil {
			os.Exit(1)
		}
	}
}

// runRemote executes the sweep against a scenario service — a single
// wrtserved or a wrtcoord cluster, which speak the same /v1/runs protocol.
// Points are submitted as one batch (rejected items are retried after the
// service's backpressure hint), then polled to completion in input order.
// Determinism makes the remote results byte-identical to local execution,
// so the CSV is the same either way — repeated grids just stop costing
// simulation time once the service's cache holds them.
func runRemote(serverURL string, pts []sweep.Point, onDone func(done, total int, o sweep.Outcome)) []sweep.Outcome {
	client := serve.NewClient(serverURL)
	ctx := context.Background()

	outs := make([]sweep.Outcome, len(pts))
	ids := make([]string, len(pts))
	pending := make([]int, len(pts)) // indices awaiting admission
	for i := range pts {
		pending[i] = i
	}
	for len(pending) > 0 {
		batch := make([]wrtring.Scenario, len(pending))
		for i, idx := range pending {
			batch[i] = pts[idx].Scenario
		}
		code, resp, err := client.SubmitScenarios(ctx, batch)
		if err != nil {
			fail("submitting to %s: %v", serverURL, err)
		}
		if resp == nil || len(resp.Runs) != len(pending) {
			fail("submitting to %s: HTTP %d with malformed response", serverURL, code)
		}
		var retry []int
		for i, run := range resp.Runs {
			idx := pending[i]
			switch run.Status {
			case "rejected":
				retry = append(retry, idx)
			case "invalid":
				outs[idx].Point = pts[idx]
				outs[idx].Err = errors.New(run.Error)
			default:
				ids[idx] = run.ID
			}
		}
		if len(retry) > 0 {
			// The service is saturated; honour its standard backpressure hint.
			time.Sleep(serve.DefaultRetryAfter)
		}
		pending = retry
	}

	done := 0
	for idx, p := range pts {
		outs[idx].Point = p
		if ids[idx] == "" {
			continue // invalid at submission; Err already set
		}
		st, err := client.Wait(ctx, ids[idx], 20*time.Millisecond)
		switch {
		case err != nil:
			outs[idx].Err = err
		case st.Status != "done":
			outs[idx].Err = fmt.Errorf("remote run %s: %s", st.Status, st.Error)
		case st.Result == nil:
			outs[idx].Err = fmt.Errorf("remote run done but result unavailable: %s", st.Error)
		default:
			var res wrtring.Result
			if err := json.Unmarshal(st.Result, &res); err != nil {
				outs[idx].Err = fmt.Errorf("decoding remote result: %w", err)
			} else {
				outs[idx].Result = &res
			}
		}
		done++
		if onDone != nil {
			onDone(done, len(pts), outs[idx])
		}
	}
	return outs
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
