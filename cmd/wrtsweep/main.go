// Command wrtsweep runs a parameter sweep across a worker pool and prints
// the results as CSV — the bulk-experiment front end for the repository.
//
// Examples:
//
//	wrtsweep -over n -values 5,10,20,50 -protocols both
//	wrtsweep -over seed -values 1,2,3,4,5 -n 16 -load saturate
//	wrtsweep -over quota -values 1:1,2:2,4:2 -n 12
//
// With -server the grid is executed remotely against a wrtserved instance
// or a wrtcoord cluster (both speak the same /v1/runs API), so repeated
// sweeps hit the service's content-addressed cache instead of re-simulating:
//
//	wrtsweep -over n -values 5,10,20,50 -server http://localhost:8090
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	wrtring "github.com/rtnet/wrtring"
	"github.com/rtnet/wrtring/internal/serve"
	"github.com/rtnet/wrtring/sweep"
)

func main() {
	over := flag.String("over", "n", "sweep dimension: n | seed | quota")
	values := flag.String("values", "5,10,20", "comma-separated values (quota uses l:k pairs)")
	protocols := flag.String("protocols", "wrt", "wrt | tpt | both")
	n := flag.Int("n", 8, "stations (fixed dimensions)")
	l := flag.Int("l", 2, "real-time quota")
	k := flag.Int("k", 2, "best-effort quota")
	dur := flag.Int64("dur", 30_000, "slots per run")
	seed := flag.Uint64("seed", 1, "base seed")
	load := flag.String("load", "cbr", "cbr | saturate | none")
	jobs := flag.Int("jobs", runtime.NumCPU(),
		"parallel simulation workers; 1 reproduces the serial run byte-for-byte")
	progress := flag.Bool("progress", false, "report per-run completion on stderr")
	server := flag.String("server", "",
		"run the sweep remotely against a wrtserved or wrtcoord URL instead of in-process")
	batch := flag.Bool("batch", false,
		"with -server: submit the whole grid as one POST /v1/batches and stream results, instead of per-run submissions")
	flag.Parse()
	if *batch && *server == "" {
		fail("-batch requires -server")
	}

	base := wrtring.Scenario{N: *n, L: *l, K: *k, Seed: *seed, Duration: *dur}
	switch *load {
	case "cbr":
		base.Sources = []wrtring.Source{{Station: wrtring.AllStations, Kind: wrtring.CBR,
			Class: wrtring.Premium, Period: 50, Dest: wrtring.Opposite()}}
	case "saturate":
		base.Sources = []wrtring.Source{
			{Station: wrtring.AllStations, Class: wrtring.Premium, Dest: wrtring.Opposite(), Preload: int(*dur)},
			{Station: wrtring.AllStations, Class: wrtring.BestEffort, Dest: wrtring.Opposite(), Preload: int(*dur)},
		}
	case "none":
	default:
		fail("unknown load %q", *load)
	}

	// The flags build a serializable grid spec, and the points expand from
	// it — the same spec and the same expansion the batch API uses
	// server-side, so -batch, -server and local runs are provably the same
	// point set in the same order.
	var axis sweep.Axis
	fields := strings.Split(*values, ",")
	switch *over {
	case "n":
		var ns []int
		for _, f := range fields {
			v, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || v < 3 {
				fail("bad station count %q", f)
			}
			ns = append(ns, v)
		}
		axis = sweep.AxisN(ns)
	case "seed":
		var seeds []uint64
		for _, f := range fields {
			v, err := strconv.ParseUint(strings.TrimSpace(f), 10, 64)
			if err != nil {
				fail("bad seed %q", f)
			}
			seeds = append(seeds, v)
		}
		axis = sweep.AxisSeeds(seeds)
	case "quota":
		var lks [][2]int
		for _, f := range fields {
			parts := strings.SplitN(strings.TrimSpace(f), ":", 2)
			if len(parts) != 2 {
				fail("quota value %q is not l:k", f)
			}
			lv, err1 := strconv.Atoi(parts[0])
			kv, err2 := strconv.Atoi(parts[1])
			if err1 != nil || err2 != nil {
				fail("quota value %q is not numeric l:k", f)
			}
			lks = append(lks, [2]int{lv, kv})
		}
		axis = sweep.AxisQuota(lks)
	default:
		fail("unknown sweep dimension %q", *over)
	}

	axes := []sweep.Axis{axis}
	switch *protocols {
	case "wrt":
	case "tpt":
		base.Protocol = wrtring.TPT
	case "both":
		axes = append(axes, sweep.AxisProtocols())
	default:
		fail("unknown protocols %q", *protocols)
	}
	grid := sweep.Grid{Base: base, Axes: axes}
	pts, err := grid.Points()
	if err != nil {
		fail("building sweep: %v", err)
	}

	var onDone func(done, total int, o sweep.Outcome)
	if *progress {
		onDone = func(done, total int, o sweep.Outcome) {
			status := "ok"
			if o.Err != nil {
				status = o.Err.Error()
			}
			fmt.Fprintf(os.Stderr, "[%d/%d] %s: %s\n", done, total, o.Point.Name, status)
		}
	}
	var outs []sweep.Outcome
	switch {
	case *batch:
		outs = runBatch(*server, grid, pts, onDone)
	case *server != "":
		outs = runRemote(*server, pts, onDone)
	default:
		outs = sweep.RunProgress(pts, *jobs, onDone)
	}
	fmt.Print(sweep.CSV(outs))
	for _, o := range outs {
		if o.Err != nil {
			os.Exit(1)
		}
	}
}

// runRemote executes the sweep against a scenario service — a single
// wrtserved or a wrtcoord cluster, which speak the same /v1/runs protocol.
// Points are submitted as one batch (rejected items are retried after the
// service's backpressure hint), then polled to completion in input order.
// Determinism makes the remote results byte-identical to local execution,
// so the CSV is the same either way — repeated grids just stop costing
// simulation time once the service's cache holds them.
func runRemote(serverURL string, pts []sweep.Point, onDone func(done, total int, o sweep.Outcome)) []sweep.Outcome {
	client := serve.NewClient(serverURL)
	ctx := context.Background()

	outs := make([]sweep.Outcome, len(pts))
	ids := make([]string, len(pts))
	scenarios := make([]wrtring.Scenario, len(pts))
	for i, p := range pts {
		scenarios[i] = p.Scenario
	}
	// Bounded, jittered retry honouring the service's Retry-After hint — the
	// shared policy in serve.RetryPolicy, so this client and wrtsoak back off
	// identically instead of hot-looping a saturated service.
	resp, err := client.SubmitScenariosRetry(ctx, scenarios, serve.RetryPolicy{})
	if err != nil {
		fail("submitting to %s: %v", serverURL, err)
	}
	for i, run := range resp.Runs {
		switch run.Status {
		case "rejected":
			outs[i].Point = pts[i]
			outs[i].Err = fmt.Errorf("rejected after retries: %s", run.Error)
		case "invalid":
			outs[i].Point = pts[i]
			outs[i].Err = errors.New(run.Error)
		default:
			ids[i] = run.ID
		}
	}

	done := 0
	for idx, p := range pts {
		outs[idx].Point = p
		if ids[idx] == "" {
			continue // invalid or rejected at submission; Err already set
		}
		st, err := client.Wait(ctx, ids[idx], 20*time.Millisecond)
		switch {
		case err != nil:
			outs[idx].Err = err
		case st.Status != "done":
			outs[idx].Err = fmt.Errorf("remote run %s: %s", st.Status, st.Error)
		case st.Result == nil:
			outs[idx].Err = fmt.Errorf("remote run done but result unavailable: %s", st.Error)
		default:
			var res wrtring.Result
			if err := json.Unmarshal(st.Result, &res); err != nil {
				outs[idx].Err = fmt.Errorf("decoding remote result: %w", err)
			} else {
				outs[idx].Result = &res
			}
		}
		done++
		if onDone != nil {
			onDone(done, len(pts), outs[idx])
		}
	}
	return outs
}

// runBatch submits the whole grid spec as one POST /v1/batches and streams
// the results back as NDJSON. The server expands the identical spec with the
// identical expansion code (sweep.Grid.Points), so the shard indices line up
// one-to-one with the locally expanded pts — results are reassembled into
// input order as the completion-ordered stream arrives. Determinism keeps
// the bytes identical to a local run, so the CSV is the same either way.
func runBatch(serverURL string, grid sweep.Grid, pts []sweep.Point, onDone func(done, total int, o sweep.Outcome)) []sweep.Outcome {
	client := serve.NewClient(serverURL)
	ctx := context.Background()

	sub, err := client.SubmitBatch(ctx, grid)
	if err != nil {
		fail("submitting batch to %s: %v", serverURL, err)
	}
	if sub.Expanded != int64(len(pts)) {
		fail("server expanded %d points, local expansion has %d — version skew between client and server",
			sub.Expanded, len(pts))
	}

	outs := make([]sweep.Outcome, len(pts))
	for i := range pts {
		outs[i].Point = pts[i]
	}
	done := 0
	n, err := client.StreamBatchResults(ctx, sub.ID, func(l serve.BatchResultLine) error {
		if l.Index < 0 || l.Index >= int64(len(pts)) {
			return fmt.Errorf("stream shard index %d out of range", l.Index)
		}
		o := &outs[l.Index]
		switch {
		case l.Status != serve.ShardCompleted:
			o.Err = fmt.Errorf("remote shard %s: %s", l.Status, l.Error)
		case l.Error != "":
			o.Err = fmt.Errorf("remote shard done but result unavailable: %s", l.Error)
		default:
			var res wrtring.Result
			if err := json.Unmarshal(l.Result, &res); err != nil {
				o.Err = fmt.Errorf("decoding remote result: %w", err)
			} else {
				o.Result = &res
			}
		}
		done++
		if onDone != nil {
			onDone(done, len(pts), *o)
		}
		return nil
	})
	if err != nil {
		fail("streaming batch %s: %v", sub.ID, err)
	}
	if n != len(pts) {
		fail("batch stream ended after %d of %d shards", n, len(pts))
	}
	return outs
}

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
