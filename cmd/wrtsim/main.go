// Command wrtsim runs one configurable scenario and dumps its metrics —
// the general-purpose entry point for exploring the protocol outside the
// predefined experiments.
package main

import (
	"flag"
	"fmt"
	"os"

	wrtring "github.com/rtnet/wrtring"
)

func main() {
	var s wrtring.Scenario
	config := flag.String("config", "", "JSON scenario file (overrides every other flag)")
	dumpConfig := flag.Bool("dump-config", false, "print the effective scenario as JSON and exit")
	proto := flag.String("proto", "wrt", "protocol: wrt | tpt")
	flag.IntVar(&s.N, "n", 8, "number of stations")
	flag.IntVar(&s.L, "l", 2, "real-time quota l per station")
	flag.IntVar(&s.K, "k", 2, "best-effort quota k per station")
	flag.Uint64Var(&s.Seed, "seed", 1, "RNG seed")
	flag.Int64Var(&s.Duration, "dur", 50_000, "duration in slots")
	flag.BoolVar(&s.EnableRAP, "rap", false, "enable the Random Access Period (join window)")
	flag.Float64Var(&s.LossProb, "loss", 0, "per-frame radio loss probability")
	flag.BoolVar(&s.DisableCDMA, "no-cdma", false, "ablation: one shared code for all stations")
	flag.BoolVar(&s.DisableSplice, "no-splice", false, "ablation: always re-form instead of splicing")
	srcRemoval := flag.Bool("source-removal", false, "ablation: source removal instead of destination removal")
	placement := flag.String("placement", "circle", "placement: circle | clustered | random")
	load := flag.String("load", "cbr", "workload: cbr | poisson | burst | saturate | none")
	period := flag.Int64("period", 40, "CBR period / Poisson mean (slots)")
	dest := flag.String("dest", "opposite", "destinations: opposite | neighbor | uniform")
	flag.Parse()

	if *proto == "tpt" {
		s.Protocol = wrtring.TPT
	}
	if *srcRemoval {
		s.Removal = 1
	}
	switch *placement {
	case "clustered":
		s.Placement = wrtring.PlacementClustered
	case "random":
		s.Placement = wrtring.PlacementRandom
	}

	var d wrtring.DestSpec
	switch *dest {
	case "neighbor":
		d = wrtring.Offset(1)
	case "uniform":
		d = wrtring.Uniform()
	default:
		d = wrtring.Opposite()
	}
	switch *load {
	case "cbr":
		s.Sources = []wrtring.Source{{Station: wrtring.AllStations, Kind: wrtring.CBR,
			Class: wrtring.Premium, Period: *period, Dest: d, Tagged: true}}
	case "poisson":
		s.Sources = []wrtring.Source{{Station: wrtring.AllStations, Kind: wrtring.Poisson,
			Class: wrtring.Premium, Mean: float64(*period), Dest: d}}
	case "burst":
		s.Sources = []wrtring.Source{{Station: wrtring.AllStations, Kind: wrtring.OnOff,
			Class: wrtring.BestEffort, Mean: float64(*period) * 4, Burst: 10, Dest: d}}
	case "saturate":
		s.Sources = []wrtring.Source{
			{Station: wrtring.AllStations, Class: wrtring.Premium, Dest: d, Preload: int(s.Duration)},
			{Station: wrtring.AllStations, Class: wrtring.BestEffort, Dest: d, Preload: int(s.Duration)},
		}
	case "none":
	default:
		fmt.Fprintf(os.Stderr, "unknown load %q\n", *load)
		os.Exit(2)
	}

	if *config != "" {
		data, err := os.ReadFile(*config)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s, err = wrtring.ParseScenario(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *dumpConfig {
		data, err := wrtring.EncodeScenario(s)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		return
	}

	net, err := wrtring.Build(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	res := net.Run()

	fmt.Printf("protocol=%s n=%d slots=%d seed=%d\n", s.Protocol, res.N, res.Slots, s.Seed)
	fmt.Printf("rounds=%d rotation mean=%.2f max=%d bound=%d (holds=%v)\n",
		res.Rounds, res.MeanRotation, res.MaxRotation, res.RotationBound,
		int64(res.MaxRotation) < res.RotationBound)
	fmt.Printf("hops/round=%.1f mean-rotation-bound=%d\n", res.HopsPerRound, res.MeanRotationBound)
	for _, c := range []wrtring.Class{wrtring.Premium, wrtring.Assured, wrtring.BestEffort} {
		if res.Delivered[c] == 0 {
			continue
		}
		fmt.Printf("%-12s delivered=%d delay mean=%.1f max=%.0f\n",
			c, res.Delivered[c], res.MeanDelay[c], res.MaxDelay[c])
	}
	fmt.Printf("throughput=%.4f pkt/slot\n", res.Throughput)
	fmt.Printf("radio: sent=%d delivered=%d collisions=%d lost=%d\n",
		res.RadioSent, res.RadioDelivered, res.RadioCollisions, res.RadioLost)
	fmt.Printf("recovery: detections=%d splices=%d reforms=%d falseAlarms=%d\n",
		res.Detections, res.Splices, res.Reformations, res.FalseAlarms)
	if res.RAPs > 0 {
		fmt.Printf("raps=%d joins=%d\n", res.RAPs, res.Joins)
	}
	if net.Ring != nil && len(net.Ring.Tagged) > 0 {
		worst := 0.0
		for _, p := range net.Ring.Tagged {
			if r := float64(p.Wait) / float64(p.Bound); r > worst {
				worst = r
			}
		}
		fmt.Printf("theorem3: %d probes, worst wait/bound=%.3f\n", len(net.Ring.Tagged), worst)
	}
	if res.Dead {
		fmt.Println("NETWORK DEAD")
		os.Exit(1)
	}
}
