// Command wrttrace runs a scenario with the protocol journal enabled and
// dumps the retained events — the observability front end for debugging
// protocol behaviour (SAT seizures, recoveries, joins, exiles).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	wrtring "github.com/rtnet/wrtring"
	"github.com/rtnet/wrtring/internal/sim"
	"github.com/rtnet/wrtring/internal/trace"
)

func main() {
	n := flag.Int("n", 8, "stations")
	dur := flag.Int64("dur", 20_000, "slots")
	seed := flag.Uint64("seed", 1, "seed")
	capacity := flag.Int("cap", 256, "retained events")
	only := flag.String("only", "", "comma-separated event kinds to retain (e.g. sat.seize,rec.heal)")
	kill := flag.Int64("kill", 0, "kill station N/2 at this slot (0 = no kill)")
	lose := flag.Int64("lose", 0, "destroy the SAT at this slot (0 = never)")
	rap := flag.Bool("rap", false, "enable the Random Access Period")
	config := flag.String("config", "", "JSON scenario file (overrides flags except -only/-cap)")
	flag.Parse()

	var s wrtring.Scenario
	if *config != "" {
		data, err := os.ReadFile(*config)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s, err = wrtring.ParseScenario(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		s = wrtring.Scenario{
			N: *n, L: 2, K: 2, Seed: *seed, Duration: *dur, EnableRAP: *rap,
			Sources: []wrtring.Source{{Station: wrtring.AllStations, Kind: wrtring.CBR,
				Class: wrtring.Premium, Period: 60, Dest: wrtring.Opposite()}},
		}
	}
	s.Trace = true
	s.TraceCapacity = *capacity

	net, err := wrtring.Build(s)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *only != "" {
		var kinds []trace.Kind
		for _, k := range strings.Split(*only, ",") {
			kinds = append(kinds, trace.Kind(strings.TrimSpace(k)))
		}
		net.Journal().Only(kinds...)
	}
	net.Start()
	if *kill > 0 {
		net.Kernel.At(sim.Time(*kill), sim.PrioAdmin, func() {
			net.Ring.KillStation(wrtring.StationID(s.N / 2))
		})
	}
	if *lose > 0 {
		net.Kernel.At(sim.Time(*lose), sim.PrioAdmin, func() { net.Ring.LoseSATOnce() })
	}
	res := net.Run()

	if err := net.Journal().Dump(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("-- run: slots=%d rounds=%d detections=%d splices=%d reforms=%d dead=%v\n",
		res.Slots, res.Rounds, res.Detections, res.Splices, res.Reformations, res.Dead)
}
