// Command wrtbounds prints the paper's closed-form bounds (equations 1–7,
// Theorems 1–3, Propositions 1–3 of §2.6 and §3.1.2) for parameter sweeps,
// so the analytical comparison of §3.3 can be regenerated and inspected
// without running a simulation.
package main

import (
	"flag"
	"fmt"
	"strconv"
	"strings"

	"github.com/rtnet/wrtring/internal/analysis"
)

func main() {
	ns := flag.String("n", "3,5,10,20,50,100", "comma-separated station counts")
	l := flag.Int("l", 2, "per-station real-time quota l")
	k := flag.Int("k", 2, "per-station best-effort quota k")
	trap := flag.Int64("trap", 16, "RAP length T_rap (slots)")
	x := flag.Int("x", 8, "queued packets ahead for the Theorem-3 column")
	flag.Parse()

	var counts []int
	for _, f := range strings.Split(*ns, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 2 {
			fmt.Printf("skipping bad station count %q\n", f)
			continue
		}
		counts = append(counts, v)
	}

	fmt.Printf("WRT-Ring vs TPT closed-form bounds (l=%d k=%d T_rap=%d, slot units)\n\n", *l, *k, *trap)
	fmt.Printf("%4s | %9s %9s | %10s %10s | %10s %10s | %12s\n",
		"N", "SAT rt", "token rt", "SAT_TIME", "2*TTRT", "E[SAT]", "TTRT", "Thm3(x="+strconv.Itoa(*x)+")")
	fmt.Println(strings.Repeat("-", 96))
	for _, n := range counts {
		ring := analysis.Uniform(n, *l, *k, *trap)
		tpt := analysis.TPTParams{N: n, TProc: 1, TProp: 0, TRap: *trap,
			SumH: int64(n) * int64(*l+*k)}
		tpt.TTRT = analysis.MinimalTTRT(tpt)

		satRT := analysis.SatRoundTrip(n, 1, 0, *trap)
		tokRT := analysis.TokenRoundTrip(tpt)
		fmt.Printf("%4d | %9d %9d | %10d %10d | %10d %10d | %12d\n",
			n, satRT, tokRT,
			analysis.SatTimeBound(ring), analysis.TPTLossReaction(tpt),
			analysis.MeanRotationBound(ring), tpt.TTRT,
			analysis.AccessDelayBound(ring, *x, *l))
	}

	fmt.Println("\ncolumns: idle control-signal round trip (§3.3); loss-reaction bounds")
	fmt.Println("SAT_TIME (Thm 1) vs 2*TTRT (§3.1.3); mean-rotation bounds (Prop 3 vs TTRT);")
	fmt.Println("Theorem-3 access bound for a real-time packet behind x queued packets.")

	fmt.Printf("\nTheorem 2 multi-rotation bounds for N=%d:\n  n rotations: ", counts[len(counts)-1])
	ring := analysis.Uniform(counts[len(counts)-1], *l, *k, *trap)
	for _, n := range []int64{1, 2, 4, 8, 16} {
		fmt.Printf("%d->%d  ", n, analysis.MultiRotationBound(ring, n))
	}
	fmt.Println()
}
