// Command wrtserved runs the scenario repository as a long-lived HTTP/JSON
// service: clients POST batches of scenarios, the bounded job queue executes
// them on the internal/runner worker pool, and a content-addressed LRU cache
// serves repeated specs without re-simulating (determinism makes the cached
// bytes exactly what a fresh run would produce).
//
//	wrtserved -addr :8080 -workers 8 -queue 512 -cache-entries 4096
//	wrtserved -addr :8080 -store-dir /var/lib/wrtring/store   # durable cache
//
// With -store-dir the RAM cache gains a durable tier: every result is also
// written to a content-addressed on-disk store (atomic rename, checksummed),
// the shard is re-indexed on boot so a restarted worker serves its whole
// cache history without re-simulating, and the /v1/store endpoints let
// cluster peers pull keys during ring rebalancing (see cmd/wrtstore for
// offline inspection of a shard directory).
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/runs -d '{"scenarios":[{"N":10,"Seed":1}]}'
//	curl -s localhost:8080/v1/runs/<id>
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM trigger graceful shutdown: the listener stops accepting,
// in-flight jobs get -drain to finish, and abandoned work is reported.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/rtnet/wrtring/internal/serve"
	"github.com/rtnet/wrtring/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation workers (0 = one per CPU)")
	queueCap := flag.Int("queue", 256, "max queued jobs (admission bound)")
	cacheEntries := flag.Int("cache-entries", serve.DefaultCacheEntries, "max cached results")
	cacheBytes := flag.Int64("cache-bytes", 0, "max cached result bytes (0 = entries bound only)")
	storeDir := flag.String("store-dir", "", "durable result-store directory; results are written through and warm-start on boot (empty = RAM cache only)")
	storeMaxBytes := flag.Int64("store-max-bytes", 0, "max bytes on disk in -store-dir before LRU eviction (0 = unbounded)")
	storeNoSync := flag.Bool("store-no-sync", false, "skip fsync on store writes (faster; a crash may quarantine the last results)")
	handoffRate := flag.Int("handoff-rate", serve.DefaultHandoffRate, "max keys per second pulled from peers during shard handoff")
	maxBatch := flag.Int("max-batch", 256, "max scenarios per submission")
	maxBatchPoints := flag.Int64("max-batch-points", serve.DefaultMaxBatchPoints, "max points one /v1/batches grid may expand to")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight jobs")
	workerID := flag.String("id", "", "worker identity when serving behind a wrtcoord cluster (surfaced on /healthz, /metrics, /v1/stats)")
	httpTimeout := flag.Duration("http-timeout", 30*time.Second, "per-request deadline on API endpoints (debug endpoints exempt)")
	pprofOn := flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	logEntries := flag.Int("log-entries", 0, "access-log ring size for /debug/log (0 = default)")
	flag.Parse()

	var disk *store.Store
	if *storeDir != "" {
		var err error
		disk, err = store.Open(*storeDir, store.Options{MaxBytes: *storeMaxBytes, NoSync: *storeNoSync})
		if err != nil {
			log.Fatalf("wrtserved: opening store %s: %v", *storeDir, err)
		}
		st := disk.Stats()
		log.Printf("wrtserved: store %s: %d results (%d bytes) warm, %d quarantined",
			*storeDir, st.Entries, st.Bytes, disk.QuarantineCount())
	}

	srv := serve.New(serve.Config{
		Workers: *workers, QueueCapacity: *queueCap,
		CacheEntries: *cacheEntries, CacheBytes: *cacheBytes,
		Store: disk, HandoffRate: *handoffRate,
		MaxBatch: *maxBatch, MaxBatchPoints: *maxBatchPoints, WorkerID: *workerID,
		RequestTimeout: *httpTimeout, EnablePprof: *pprofOn, LogEntries: *logEntries,
	})
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() {
		label := ""
		if *workerID != "" {
			label = " as worker " + *workerID
		}
		log.Printf("wrtserved: listening on %s%s (workers=%d queue=%d cache=%d entries)",
			*addr, label, *workers, *queueCap, *cacheEntries)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errCh <- err
			return
		}
		errCh <- nil
	}()

	select {
	case err := <-errCh:
		if err != nil {
			log.Fatalf("wrtserved: %v", err)
		}
		return
	case <-ctx.Done():
	}

	log.Printf("wrtserved: signal received, draining (deadline %s)", *drain)
	// Stop accepting new connections first so no submissions race the drain,
	// then give in-flight simulations their deadline.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain+5*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		log.Printf("wrtserved: http shutdown: %v", err)
	}
	report := srv.Drain(*drain)
	qs := srv.Queue().Stats()
	cs := srv.Cache().Stats()
	log.Printf("wrtserved: drained: completed=%d failed=%d dropped=%d deadlineExceeded=%v",
		report.Completed, report.Failed, report.Dropped, report.DeadlineExceeded)
	log.Printf("wrtserved: totals: admitted=%d completed=%d failed=%d dropped=%d rejected=%d coalesced=%d cacheHitRatio=%.3f",
		qs.Admitted, qs.Completed, qs.Failed, qs.Dropped, qs.Rejected, qs.Coalesced, cs.HitRatio())
	if qs.Admitted != qs.Completed+qs.Failed+qs.Dropped {
		// The conservation law is the service's accounting invariant; a
		// violation means lost work and is worth a loud exit.
		fmt.Fprintf(os.Stderr, "wrtserved: accounting imbalance: admitted %d != completed %d + failed %d + dropped %d\n",
			qs.Admitted, qs.Completed, qs.Failed, qs.Dropped)
		os.Exit(1)
	}
}
