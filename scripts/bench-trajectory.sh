#!/usr/bin/env bash
# bench-trajectory.sh — append the tracked benchmarks' best-of numbers
# (per-slot hot path: RunForN64, KernelScheduleAndFire; whole-grid rate:
# GridThroughput) as one sequence point to the committed perf trajectory
# (benchmarks/bench_results.csv) and emit a machine-readable snapshot
# BENCH_<seq>.json, both under benchmarks/ (for CI artifact upload) and at
# the repo root (the published trajectory point for this PR).
#
# Unlike bench.sh/bench-compare.sh (a machine-local pass/fail regression
# gate), the trajectory is a committed history: one row group per promoted
# measurement, so the slots/sec and runs/sec curves across PRs are visible
# in the repo. CI runs this non-blocking and uploads the JSON; a row only
# enters the committed CSV when a PR author promotes numbers measured on
# their machine.
#
# Usage:
#   scripts/bench-trajectory.sh
#
# Environment:
#   BENCH_COUNT  -count repetitions; the minimum ns/op rep is recorded (default 3)
#   BENCH_TIME   -benchtime per benchmark (unset: go's default 1s)
#   BENCH_LABEL  label column for the new rows (default: current branch name)
#   BENCH_SEQ    sequence number for the new rows (default: max existing + 1)
set -euo pipefail
cd "$(dirname "$0")/.."

csv=benchmarks/bench_results.csv
count="${BENCH_COUNT:-3}"
label="${BENCH_LABEL:-$(git rev-parse --abbrev-ref HEAD 2>/dev/null || echo local)}"
commit="$(git rev-parse --short HEAD 2>/dev/null || echo unknown)"
# A trailing + marks numbers measured on a dirty worktree.
if ! git diff --quiet 2>/dev/null; then
	commit="${commit}+"
fi
today="$(date -u +%Y-%m-%d)"

timeflag=()
if [ -n "${BENCH_TIME:-}" ]; then
	timeflag=(-benchtime "$BENCH_TIME")
fi

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT
go test -run '^$' -bench 'BenchmarkRunForN64' -benchmem \
	"${timeflag[@]}" -count "$count" . | tee "$raw"
go test -run '^$' -bench 'BenchmarkKernelScheduleAndFire' -benchmem \
	"${timeflag[@]}" -count "$count" ./internal/sim | tee -a "$raw"
go test -run '^$' -bench 'BenchmarkGridThroughput' -benchmem \
	"${timeflag[@]}" -count "$count" ./internal/runner | tee -a "$raw"

if [ ! -f "$csv" ]; then
	echo "seq,label,date,commit,benchmark,ns_per_op,slots_per_sec,bytes_per_op,allocs_per_op,allocs_per_run" > "$csv"
fi
seq="${BENCH_SEQ:-$(awk -F, 'NR>1 && $1+0>m {m=$1+0} END {print m+1}' "$csv")}"

# Best-of (minimum ns/op) per benchmark across the -count reps, keeping the
# companion metrics from the same rep. The -N GOMAXPROCS suffix is stripped.
# slots_per_sec holds the benchmark's native rate metric: slots/sec for the
# per-slot benchmarks, runs/sec (whole scenarios per second) for the grid.
awk -v seq="$seq" -v label="$label" -v date="$today" -v commit="$commit" '
/^Benchmark/ {
	name = $1
	sub(/^Benchmark/, "", name)
	sub(/-[0-9]+$/, "", name)
	ns = ""; sps = ""; bytes = ""; allocs = ""; apr = ""
	for (i = 2; i <= NF; i++) {
		if ($i == "ns/op")      ns     = $(i-1)
		if ($i == "slots/sec")  sps    = $(i-1)
		if ($i == "runs/sec")   sps    = $(i-1)
		if ($i == "B/op")       bytes  = $(i-1)
		if ($i == "allocs/op")  allocs = $(i-1)
		if ($i == "allocs/run") apr    = $(i-1)
	}
	if (ns == "") next
	if (!(name in best) || ns + 0 < best[name] + 0) {
		best[name] = ns; S[name] = sps; B[name] = bytes; A[name] = allocs; R[name] = apr
	}
	if (!(name in seen)) { order[++n] = name; seen[name] = 1 }
}
END {
	for (j = 1; j <= n; j++) {
		name = order[j]
		printf "%s,%s,%s,%s,%s,%s,%s,%s,%s,%s\n",
			seq, label, date, commit, name, best[name], S[name], B[name], A[name], R[name]
	}
}' "$raw" >> "$csv"

out="benchmarks/BENCH_${seq}.json"
awk -F, -v seq="$seq" '
NR > 1 && $1 == seq {
	if (rows != "") rows = rows ",\n"
	rows = rows sprintf("    {\"benchmark\": \"%s\", \"ns_per_op\": %s, \"rate_per_sec\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s, \"allocs_per_run\": %s}",
		$5, $6, ($7 == "" ? "null" : $7), $8, $9, ($10 == "" ? "null" : $10))
	label = $2; date = $3; commit = $4
}
END {
	printf "{\n  \"seq\": %s,\n  \"label\": \"%s\",\n  \"date\": \"%s\",\n  \"commit\": \"%s\",\n  \"results\": [\n%s\n  ]\n}\n",
		seq, label, date, commit, rows
}' "$csv" > "$out"

# Publish the snapshot at the repo root as well — the committed trajectory
# point for the PR that promoted these rows.
cp "$out" "BENCH_${seq}.json"

echo "appended trajectory point $seq to $csv; wrote $out and BENCH_${seq}.json" >&2
