#!/usr/bin/env bash
# bench.sh — run the benchmark suite and store raw `go test -bench` output
# for regression tracking.
#
# Usage:
#   scripts/bench.sh [outfile]        # default: benchmarks/latest.txt
#
# Environment:
#   BENCH_PKGS   packages to benchmark (default ./...)
#   BENCH_COUNT  -count repetitions, best-of is used by the comparer (default 3)
#   BENCH_TIME   -benchtime per benchmark (unset: go's default 1s; set e.g.
#                "1x" for a quick smoke pass — too noisy for comparisons)
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-benchmarks/latest.txt}"
pkgs="${BENCH_PKGS:-./...}"
count="${BENCH_COUNT:-3}"

timeflag=()
if [ -n "${BENCH_TIME:-}" ]; then
	timeflag=(-benchtime "$BENCH_TIME")
fi

mkdir -p "$(dirname "$out")"
{
	echo "# $(go version)"
	echo "# goos=$(go env GOOS) goarch=$(go env GOARCH)"
	echo "# pkgs=$pkgs count=$count benchtime=${BENCH_TIME:-default}"
	go test -run '^$' -bench . -benchmem "${timeflag[@]}" -count "$count" $pkgs
} | tee "$out"
echo "wrote $out" >&2
