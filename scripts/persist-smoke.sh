#!/usr/bin/env bash
# persist-smoke: end-to-end check of the durable result store through the
# real binaries. Phase A restarts a warm fleet: a sweep grid is run once,
# every process is killed, and the rebooted fleet (same -store-dir shards)
# must serve the resubmitted grid byte-identically with zero new
# simulations. Phase B changes ring membership: a third worker joins the
# running cluster over POST /v1/workers, the rebalancer hands it its key
# range, and the grid still resolves with zero new simulations. The shard
# directories are then fsck'd with wrtstore. Used by `make persist-smoke`
# and the non-blocking CI job.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=$(mktemp -d)
STORES=$(mktemp -d)
PIDS=()
cleanup() {
  kill "${PIDS[@]}" 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$BIN" "$STORES"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/wrtserved ./cmd/wrtcoord ./cmd/wrtsweep ./cmd/wrtstore

COORD=127.0.0.1:18190
PORTS=(18181 18182 18183)

start_worker() { # id port
  "$BIN/wrtserved" -addr "127.0.0.1:$2" -id "$1" -workers 2 \
    -store-dir "$STORES/$1" -store-no-sync &
  PIDS+=($!)
}

start_coord() { # extra worker flags...
  "$BIN/wrtcoord" -addr "$COORD" -poll 5ms -health 250ms -rebalance 500ms "$@" &
  PIDS+=($!)
}

wait_healthy() { # url
  for _ in $(seq 1 100); do
    curl -sf "$1/healthz" >/dev/null 2>&1 && return 0
    sleep 0.1
  done
  echo "persist-smoke: $1 never became healthy" >&2
  return 1
}

metric() { # url name
  curl -sf "$1/metrics" | awk -v m="$2" '$1 == m {print $2}'
}

run_grid() {
  "$BIN/wrtsweep" -over n -values 5,8,10 -protocols both -dur 5000 \
    -server "http://$COORD"
}

stop_all() {
  kill "${PIDS[@]}" 2>/dev/null || true
  for pid in "${PIDS[@]}"; do wait "$pid" 2>/dev/null || true; done
  PIDS=()
}

# ---- Phase A: warm restart ------------------------------------------------

start_worker w1 "${PORTS[0]}"
start_worker w2 "${PORTS[1]}"
start_coord -worker "w1=http://127.0.0.1:${PORTS[0]}" -worker "w2=http://127.0.0.1:${PORTS[1]}"
wait_healthy "http://$COORD"

first=$(run_grid)
admitted=$(metric "http://$COORD" wrtcoord_fleet_admitted_total)
if [ "$admitted" != "6" ]; then
  echo "persist-smoke: cold pass admitted $admitted simulations, want 6" >&2
  exit 1
fi

# Kill everything: worker RAM and coordinator memory are gone; only the
# shard directories survive.
stop_all

start_worker w1 "${PORTS[0]}"
start_worker w2 "${PORTS[1]}"
start_coord -worker "w1=http://127.0.0.1:${PORTS[0]}" -worker "w2=http://127.0.0.1:${PORTS[1]}"
wait_healthy "http://$COORD"

second=$(run_grid)
if [ "$first" != "$second" ]; then
  echo "persist-smoke: CSV diverged across the fleet restart" >&2
  exit 1
fi
admitted=$(metric "http://$COORD" wrtcoord_fleet_admitted_total)
if [ "$admitted" != "0" ]; then
  echo "persist-smoke: warm fleet ran $admitted new simulations, want 0" >&2
  exit 1
fi
disk_hits=0
for port in "${PORTS[0]}" "${PORTS[1]}"; do
  h=$(metric "http://127.0.0.1:$port" wrtserved_store_hits_total)
  disk_hits=$((disk_hits + h))
done
if [ "$disk_hits" != "6" ]; then
  echo "persist-smoke: warm fleet served $disk_hits results from disk, want 6" >&2
  exit 1
fi
echo "persist-smoke: phase A OK — fleet restarted warm, 0 new simulations, 6 disk hits"

# ---- Phase B: membership change + shard handoff ---------------------------

start_worker w3 "${PORTS[2]}"
wait_healthy "http://127.0.0.1:${PORTS[2]}"
curl -sf -X POST "http://$COORD/v1/workers" \
  -d "{\"id\": \"w3\", \"url\": \"http://127.0.0.1:${PORTS[2]}\"}" >/dev/null

# The rebalancer hands w3 the keys it now owns; wait until every planned
# pull has landed (planned is stable once the first post-join sweep runs —
# later sweeps see the keys already in place and plan nothing new).
pulled=0
planned=0
for _ in $(seq 1 100); do
  pulled=$(metric "http://127.0.0.1:${PORTS[2]}" wrtserved_handoff_pulled_total)
  planned=$(metric "http://$COORD" wrtcoord_rebalance_keys_total)
  if [ "${planned:-0}" -gt 0 ] && [ "${pulled:-0}" -ge "$planned" ]; then
    break
  fi
  sleep 0.1
done
if [ "${planned:-0}" -eq 0 ] || [ "${pulled:-0}" -lt "$planned" ]; then
  echo "persist-smoke: handoff stalled: w3 pulled ${pulled:-0} of ${planned:-0} planned keys" >&2
  exit 1
fi

third=$(run_grid)
if [ "$first" != "$third" ]; then
  echo "persist-smoke: CSV diverged after the membership change" >&2
  exit 1
fi
admitted=$(metric "http://$COORD" wrtcoord_fleet_admitted_total)
if [ "$admitted" != "0" ]; then
  echo "persist-smoke: post-handoff grid ran $admitted new simulations, want 0" >&2
  exit 1
fi
echo "persist-smoke: phase B OK — w3 joined, pulled $pulled/$planned planned keys, 0 new simulations"

# ---- fsck the shards offline ----------------------------------------------

stop_all
entries=0
for id in w1 w2; do
  "$BIN/wrtstore" verify -dir "$STORES/$id" >/dev/null
  n=$("$BIN/wrtstore" stat -dir "$STORES/$id" | awk '/^entries:/ {print $2}')
  entries=$((entries + n))
done
"$BIN/wrtstore" verify -dir "$STORES/w3" >/dev/null
w3_entries=$("$BIN/wrtstore" stat -dir "$STORES/w3" | awk '/^entries:/ {print $2}')
# Conservation: the original owners keep all 6 results (handoff copies, it
# does not move), and w3 holds exactly the keys the rebalancer planned.
if [ "$entries" != "6" ] || [ "$w3_entries" != "$planned" ]; then
  echo "persist-smoke: shards hold $entries+$w3_entries entries, want 6+$planned" >&2
  exit 1
fi

echo "persist-smoke: OK — warm restart and ring handoff both served from the durable store"
