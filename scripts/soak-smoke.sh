#!/usr/bin/env bash
# soak-smoke: boot a wrtcoord coordinator fronting two wrtserved workers,
# exercise the batch subsystem end to end, then put the cluster under a
# short wrtsoak load run. Asserts:
#   (a) a grid submitted via POST /v1/batches streams the same CSV as the
#       per-run remote path (one batch request vs N submissions),
#   (b) resubmitting the identical grid starts zero new simulations — the
#       second batch is answered entirely from the fleet's cache shards,
#   (c) a 10s wrtsoak run reports nonzero throughput with latency quantiles.
# The soak summary JSON is left at $SOAK_SUMMARY (default soak-summary.json)
# for CI to upload as an artifact. Used by `make soak-smoke`.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=$(mktemp -d)
SOAK_SUMMARY=${SOAK_SUMMARY:-soak-summary.json}
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/wrtserved ./cmd/wrtcoord ./cmd/wrtsweep ./cmd/wrtsoak

PORTS=(18084 18085)
COORD=127.0.0.1:18091
WORKER_ARGS=()
for i in "${!PORTS[@]}"; do
  "$BIN/wrtserved" -addr "127.0.0.1:${PORTS[$i]}" -id "w$((i + 1))" -workers 2 &
  WORKER_ARGS+=(-worker "w$((i + 1))=http://127.0.0.1:${PORTS[$i]}")
done
"$BIN/wrtcoord" -addr "$COORD" "${WORKER_ARGS[@]}" -poll 5ms -health 250ms &

for _ in $(seq 1 100); do
  curl -sf "http://$COORD/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://$COORD/healthz"

run_grid() {
  "$BIN/wrtsweep" -over n -values 5,8,10 -protocols both -dur 5000 \
    -server "http://$COORD" "$@"
}

# (a) One POST /v1/batches streams the same bytes as N per-run submissions.
per_run=$(run_grid)
batch=$(run_grid -batch)
if [ "$per_run" != "$batch" ]; then
  echo "soak-smoke: batch CSV diverged from per-run CSV" >&2
  exit 1
fi

# (b) The resubmitted grid must not start a single new simulation: 3 station
# counts x 2 protocols = 6 distinct scenarios, admitted exactly once.
batch2=$(run_grid -batch)
if [ "$batch" != "$batch2" ]; then
  echo "soak-smoke: batch CSV diverged between passes" >&2
  exit 1
fi
admitted=$(curl -sf "http://$COORD/metrics" |
  awk '/^wrtcoord_fleet_admitted_total/ {print $2}')
if [ "$admitted" != "6" ]; then
  echo "soak-smoke: fleet admitted $admitted simulations, want 6" >&2
  exit 1
fi
batches=$(curl -sf "http://$COORD/metrics" |
  awk '/^wrtcoord_batches_created_total/ {print $2}')
if [ "$batches" != "2" ]; then
  echo "soak-smoke: coordinator created $batches batches, want 2" >&2
  exit 1
fi

# (c) Soak the cluster for 10s; wrtsoak exits 1 itself if nothing succeeds.
"$BIN/wrtsoak" -server "http://$COORD" -duration 10s -concurrency 4 \
  -hit 0.5 -slots 2000 -json "$SOAK_SUMMARY"

echo "soak-smoke: OK — batch==per-run CSV, second batch fully cached, soak summary in $SOAK_SUMMARY"
