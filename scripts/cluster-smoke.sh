#!/usr/bin/env bash
# cluster-smoke: boot a wrtcoord coordinator fronting three wrtserved
# workers, run a tiny sweep grid through the cluster twice, and assert that
# (a) both passes produce identical CSV (remote execution is byte-stable)
# and (b) the fleet ran each distinct scenario exactly once (the second
# pass was served entirely from cache). Used by `make cluster-smoke` and CI.
set -euo pipefail

cd "$(dirname "$0")/.."
BIN=$(mktemp -d)
cleanup() {
  # shellcheck disable=SC2046
  kill $(jobs -p) 2>/dev/null || true
  wait 2>/dev/null || true
  rm -rf "$BIN"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/wrtserved ./cmd/wrtcoord ./cmd/wrtsweep

PORTS=(18081 18082 18083)
COORD=127.0.0.1:18090
WORKER_ARGS=()
for i in "${!PORTS[@]}"; do
  "$BIN/wrtserved" -addr "127.0.0.1:${PORTS[$i]}" -id "w$((i + 1))" -workers 2 &
  WORKER_ARGS+=(-worker "w$((i + 1))=http://127.0.0.1:${PORTS[$i]}")
done
"$BIN/wrtcoord" -addr "$COORD" "${WORKER_ARGS[@]}" -poll 5ms -health 250ms &

for _ in $(seq 1 100); do
  curl -sf "http://$COORD/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done
curl -sf "http://$COORD/healthz"

run_grid() {
  "$BIN/wrtsweep" -over n -values 5,8,10 -protocols both -dur 5000 \
    -server "http://$COORD"
}

first=$(run_grid)
second=$(run_grid)
if [ "$first" != "$second" ]; then
  echo "cluster-smoke: CSV diverged between passes" >&2
  exit 1
fi

# 3 station counts x 2 protocols = 6 distinct scenarios; the resubmitted
# grid must not have started a single new simulation on any worker.
admitted=$(curl -sf "http://$COORD/metrics" |
  awk '/^wrtcoord_fleet_admitted_total/ {print $2}')
if [ "$admitted" != "6" ]; then
  echo "cluster-smoke: fleet admitted $admitted simulations, want 6" >&2
  exit 1
fi

echo "cluster-smoke: OK — 6 distinct runs, identical CSV, second pass fully cached"
