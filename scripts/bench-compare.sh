#!/usr/bin/env bash
# bench-compare.sh — compare two `go test -bench` output files and fail if
# any benchmark regressed by more than BENCH_MAX_REGRESSION_PCT percent.
#
# Usage:
#   scripts/bench-compare.sh [baseline] [latest]
#     baseline  default: benchmarks/baseline.txt
#     latest    default: benchmarks/latest.txt
#
# Environment:
#   BENCH_MAX_REGRESSION_PCT  fail threshold in percent (default 10)
#
# For each benchmark name the best (minimum) ns/op across -count repetitions
# is used, which filters scheduler noise. Benchmarks present in only one
# file are reported but never fail the check. Compare runs from the same
# machine and goos/goarch only — cross-machine deltas are meaningless.
set -euo pipefail
cd "$(dirname "$0")/.."

base="${1:-benchmarks/baseline.txt}"
new="${2:-benchmarks/latest.txt}"
thresh="${BENCH_MAX_REGRESSION_PCT:-10}"

for f in "$base" "$new"; do
	if [ ! -f "$f" ]; then
		echo "bench-compare: missing $f (run scripts/bench.sh first," >&2
		echo "or 'make bench-baseline' to create a baseline)" >&2
		exit 2
	fi
done

# Emit "name best_ns_per_op" pairs, sorted by name, best-of over -count runs.
extract() {
	awk '/^Benchmark/ {
		for (i = 2; i < NF; i++)
			if ($(i+1) == "ns/op") { print $1, $i; break }
	}' "$1" | sort -k1,1 | awk '
		$1 != last { if (last != "") print last, best; last = $1; best = $2; next }
		$2 + 0 < best + 0 { best = $2 }
		END { if (last != "") print last, best }'
}

join -a1 -a2 -e '-' -o 0,1.2,2.2 \
	<(extract "$base") <(extract "$new") |
	awk -v thresh="$thresh" '
	BEGIN {
		printf "%-46s %14s %14s %9s\n", "benchmark", "baseline", "latest", "delta%"
		fail = 0
	}
	{
		name = $1; old = $2; cur = $3
		if (old == "-" || cur == "-") {
			printf "%-46s %14s %14s %9s\n", name, old, cur, "n/a"
			next
		}
		delta = (cur - old) / old * 100
		mark = ""
		if (delta > thresh) { mark = "  << REGRESSION"; fail = 1 }
		printf "%-46s %14.0f %14.0f %+8.1f%%%s\n", name, old, cur, delta, mark
	}
	END {
		if (fail) {
			printf "\nFAIL: at least one benchmark regressed more than %s%%\n", thresh
			exit 1
		}
		printf "\nOK: no benchmark regressed more than %s%%\n", thresh
	}'
