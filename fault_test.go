package wrtring

import (
	"encoding/json"
	"fmt"
	"testing"
)

// faultBase is the acceptance scenario from the fault-injection issue: a
// fully-connected ring with RAP + AutoRejoin (so stations exiled by false
// splices re-enter), steady Premium traffic, and a crash-and-restart in the
// middle of the run. Full connectivity keeps re-formation geometrically
// possible at any loss rate — the grid probes the recovery machinery, not
// partition tolerance.
func faultBase(seed uint64) Scenario {
	return Scenario{
		N: 8, L: 2, K: 2, Seed: seed, Duration: 20000,
		RangeChords: 8,
		EnableRAP:   true, TEar: 12, TUpdate: 4, AutoRejoin: true,
		Sources: []Source{{
			Station: AllStations, Kind: CBR, Class: Premium,
			Period: 40, Dest: Opposite(),
		}},
		Fault: &FaultSpec{
			Crashes: []CrashOp{{At: 5000, Station: 3, For: 2000}},
		},
	}
}

// TestFaultAcceptanceGrid is the issue's acceptance criterion: under loss
// p ∈ {0, 0.1%, 1%, 5%}, both uniform and bursty, combined with a
// crash-and-restart schedule, every run heals back to full membership with
// exactly one circulating SAT and zero invariant violations. RunFor itself
// panics on any violation, so completing at all is most of the assertion.
func TestFaultAcceptanceGrid(t *testing.T) {
	for _, burstLen := range []int64{0, 50} {
		for _, p := range []float64{0, 0.001, 0.01, 0.05} {
			if p == 0 && burstLen != 0 {
				continue // zero-rate channel has no burst structure
			}
			name := fmt.Sprintf("p=%v/burst=%d", p, burstLen)
			t.Run(name, func(t *testing.T) {
				sc := faultBase(7)
				sc.Fault.Loss = &LossSpec{Mean: p, BurstLen: burstLen}
				net, err := Build(sc)
				if err != nil {
					t.Fatal(err)
				}
				res := net.RunFor(sc.Duration)
				if res.Dead {
					t.Fatal("ring died under loss")
				}
				if res.Rounds == 0 {
					t.Fatal("SAT never rotated")
				}
				// Clear the loss channel and let the ring finish healing:
				// under sustained bursty loss the run can end mid-rejoin, so
				// full membership is asserted once the channel recovers.
				net.Medium.FaultFn = nil
				res = net.RunFor(5000)
				if res.Dead {
					t.Fatal("ring died during the heal tail")
				}
				if res.InvariantViolations != 0 {
					t.Fatalf("%d invariant violations", res.InvariantViolations)
				}
				if res.N != 8 {
					t.Fatalf("ring did not heal to full membership: N=%d", res.N)
				}
				if res.InvariantChecks == 0 {
					t.Fatal("invariant checker never settled during the heal tail")
				}
				if p == 0 {
					// Loss-free: the crashed station restarts exactly once.
					if res.Restarts != 1 {
						t.Fatalf("Restarts=%d, want 1", res.Restarts)
					}
					if res.FaultDropped != 0 {
						t.Fatalf("p=0 dropped %d frames", res.FaultDropped)
					}
				} else {
					if res.FaultDropped == 0 {
						t.Fatalf("loss channel at p=%v dropped nothing", p)
					}
					// At high loss the crash target may already be exiled when
					// its scheduled crash fires (KillStation no-ops on inactive
					// stations), so the restart count is at most one.
					if res.Restarts > 1 {
						t.Fatalf("Restarts=%d, want <=1", res.Restarts)
					}
				}
			})
		}
	}
}

// TestFaultRunsDifferAcrossSeeds is a cheap sanity inversion: with a lossy
// channel in play, two seeds must not produce the same faulted trajectory.
func TestFaultRunsDifferAcrossSeeds(t *testing.T) {
	run := func(seed uint64) string {
		sc := faultBase(seed)
		sc.Fault.Loss = &LossSpec{Mean: 0.01, BurstLen: 50}
		r, err := Run(sc)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := json.Marshal(r)
		return string(b)
	}
	if run(1) == run(2) {
		t.Fatal("different seeds, byte-identical results")
	}
}

// TestFaultDeterminism pins byte-identical repeatability for a fixed seed:
// the loss chains, the crash schedule and the churn arrivals all draw from
// RNG streams split off the scenario seed, so re-running the same faulted
// scenario reproduces the result exactly. (Worker-count independence of a
// whole grid is asserted in the sweep package, which dispatches these same
// scenarios across -jobs workers.)
func TestFaultDeterminism(t *testing.T) {
	sc := faultBase(11)
	sc.Fault.Loss = &LossSpec{Mean: 0.01, BurstLen: 50}
	sc.Fault.JoinEvery = 4000
	sc.Fault.LeaveEvery = 5000
	sc.Fault.ChurnStart = 2000
	r1, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := json.Marshal(r1)
	b2, _ := json.Marshal(r2)
	if string(b1) != string(b2) {
		t.Fatalf("faulted run not reproducible:\n%s\n%s", b1, b2)
	}
	if r1.InvariantViolations != 0 {
		t.Fatalf("churn run violated invariants: %d", r1.InvariantViolations)
	}
}

// TestFaultChurnChangesMembership makes sure the Poisson churn processes
// actually fire: joins grow the ring, leaves shrink it, and the run stays
// healthy throughout — with the invariant checker settling and auditing in
// the quiet stretches between churn events.
func TestFaultChurnChangesMembership(t *testing.T) {
	sc := Scenario{
		N: 8, L: 2, K: 2, Seed: 5, Duration: 30000,
		EnableRAP: true, TEar: 12, TUpdate: 4,
		Fault: &FaultSpec{
			JoinEvery:  3000,
			LeaveEvery: 6000,
			ChurnStart: 1000,
		},
	}
	res, err := Run(sc)
	if err != nil {
		t.Fatal(err)
	}
	if res.Dead {
		t.Fatal("ring died under churn")
	}
	if res.Joins == 0 {
		t.Fatal("churn join process never admitted anyone")
	}
	if res.InvariantChecks == 0 {
		t.Fatal("invariant checker never settled between churn events")
	}
	if res.InvariantViolations != 0 {
		t.Fatalf("%d invariant violations under churn", res.InvariantViolations)
	}
}

// TestFaultSpecErrors pins the wiring-time validation.
func TestFaultSpecErrors(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
	}{
		{"churn-join-without-rap", Scenario{N: 6, Fault: &FaultSpec{JoinEvery: 100}}},
		{"crash-out-of-range", Scenario{N: 6, Fault: &FaultSpec{Crashes: []CrashOp{{At: 10, Station: 6}}}}},
		{"crash-negative-slot", Scenario{N: 6, Fault: &FaultSpec{Crashes: []CrashOp{{At: -1, Station: 0}}}}},
		{"loss-invalid", Scenario{N: 6, Fault: &FaultSpec{Loss: &LossSpec{PGoodBad: 2}}}},
		{"script-on-tpt", Scenario{Protocol: TPT, N: 6, Fault: &FaultSpec{Crashes: []CrashOp{{At: 10, Station: 0}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Run(tc.sc); err == nil {
				t.Fatal("invalid fault spec accepted")
			}
		})
	}
}

// TestLossOnTPT exercises the protocol-agnostic half: the loss channel (no
// scripts) applies to the TPT baseline too.
func TestLossOnTPT(t *testing.T) {
	res, err := Run(Scenario{
		Protocol: TPT, N: 8, Seed: 3, Duration: 10000,
		Sources: []Source{{Station: AllStations, Kind: CBR, Class: Premium,
			Period: 40, Dest: Opposite()}},
		Fault: &FaultSpec{Loss: &LossSpec{Mean: 0.01}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultDropped == 0 {
		t.Fatal("TPT loss channel dropped nothing")
	}
}
