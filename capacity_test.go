package wrtring

import (
	"math"
	"testing"

	"github.com/rtnet/wrtring/internal/analysis"
)

// TestRingCapacityModelMatchesSimulation cross-validates the closed-form
// capacity estimate (analysis.RingCapacity) against the saturated
// simulator: the model must predict measured throughput within 15% for
// both the slot-hop-limited and the quota-limited regimes.
func TestRingCapacityModelMatchesSimulation(t *testing.T) {
	cases := []struct {
		name string
		n    int
		l, k int
		dest DestSpec
		dist float64
	}{
		{"slot-limited/opposite", 12, 4, 4, Opposite(), 6},
		// k=2 splits into k1=1, k2=1, so the Assured and BestEffort
		// preloads below exercise both non-real-time quota lanes.
		{"quota-limited/neighbor", 12, 1, 2, Offset(1), 1},
		{"slot-limited/neighbor-bigquota", 8, 8, 8, Offset(1), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := Scenario{
				N: c.n, L: c.l, K: c.k, Seed: 70, Duration: 30_000,
				Sources: []Source{
					{Station: AllStations, Class: Premium, Dest: c.dest, Preload: 30_000},
					{Station: AllStations, Class: Assured, Dest: c.dest, Preload: 30_000},
					{Station: AllStations, Class: BestEffort, Dest: c.dest, Preload: 30_000},
				},
			}
			res, err := Run(s)
			if err != nil {
				t.Fatal(err)
			}
			model := analysis.RingCapacity(c.n, c.l, c.k, 0, c.dist)
			rel := math.Abs(res.Throughput-model) / model
			if rel > 0.15 {
				t.Fatalf("model %f vs measured %f (rel err %.2f)", model, res.Throughput, rel)
			}
		})
	}
}

// TestUtilizationAndHopDistanceAccounting checks the spatial-reuse
// bookkeeping: under opposite-destination saturation the mean hop distance
// is N/2 and the slot-hop utilisation approaches 1.
func TestUtilizationAndHopDistanceAccounting(t *testing.T) {
	n := 12
	net, err := Build(Scenario{
		N: n, L: 4, K: 4, Seed: 71, Duration: 30_000,
		Sources: []Source{
			{Station: AllStations, Class: Premium, Dest: Opposite(), Preload: 30_000},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	m := &net.Ring.Metrics
	// Under saturation most slot-hops carry data, but not all: empties
	// must travel past quota-exhausted stations to reach the SAT holder,
	// so some idle fraction is intrinsic to the round-robin quota gating.
	if u := m.Utilization(); u < 0.6 || u > 1.0 {
		t.Fatalf("utilisation %f out of the saturated range", u)
	}
	if d := m.MeanHopDistance(); math.Abs(d-float64(n/2)) > 0.5 {
		t.Fatalf("mean hop distance %f, want ~%d", d, n/2)
	}
	// The accounting identity: throughput = utilisation × N / distance.
	predicted := m.Utilization() * float64(n) / m.MeanHopDistance()
	if math.Abs(predicted-res.Throughput)/res.Throughput > 0.05 {
		t.Fatalf("identity broken: util·N/dist = %f vs throughput %f", predicted, res.Throughput)
	}
}

// TestTPTCapacityModelMatchesSimulation cross-validates the TPT capacity
// closed form for single-hop (dense) topologies.
func TestTPTCapacityModelMatchesSimulation(t *testing.T) {
	n := 12
	s := Scenario{
		Protocol: TPT, N: n, L: 2, K: 2, Seed: 72, Duration: 30_000,
		Sources: []Source{
			{Station: AllStations, Class: Premium, Dest: Opposite(), Preload: 30_000},
			{Station: AllStations, Class: BestEffort, Dest: Opposite(), Preload: 30_000},
		},
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// With RangeChords 2.5 the BFS tree is shallow; opposite stations are
	// a few tree hops apart. Use the measured relay ratio for the model's
	// hop count to isolate the channel model from routing geometry.
	net, _ := Build(s)
	net.Run()
	var forwards, delivered int64
	for i := 0; i < n; i++ {
		forwards += net.Tree.Station(StationID(i)).Metrics.Forwarded
	}
	delivered = net.Tree.Metrics.TotalDelivered()
	meanHops := 1 + float64(forwards)/float64(delivered)
	model := analysis.TPTCapacity(analysis.TPTParams{
		N: n, TProc: 1, TProp: 0, SumH: int64(n) * 4,
	}, meanHops)
	rel := math.Abs(res.Throughput-model) / model
	if rel > 0.2 {
		t.Fatalf("model %f (hops %.2f) vs measured %f (rel err %.2f)",
			model, meanHops, res.Throughput, rel)
	}
}

// TestCapacityAdvantagePredictionHoldsInSim: the predicted WRT-Ring/TPT
// advantage must at least be directionally right (ring wins, large margin).
func TestCapacityAdvantagePredictionHoldsInSim(t *testing.T) {
	n := 16
	ring, err := Run(Scenario{N: n, L: 2, K: 2, Seed: 73, Duration: 30_000,
		Sources: []Source{{Station: AllStations, Class: Premium, Dest: Offset(1), Preload: 30_000}}})
	if err != nil {
		t.Fatal(err)
	}
	tree, err := Run(Scenario{Protocol: TPT, N: n, L: 2, K: 2, Seed: 73, Duration: 30_000,
		Sources: []Source{{Station: AllStations, Class: Premium, Dest: Offset(1), Preload: 30_000}}})
	if err != nil {
		t.Fatal(err)
	}
	measured := ring.Throughput / tree.Throughput
	predicted := analysis.CapacityAdvantage(n, 2, 2, 0, 1, 1)
	if measured < predicted/3 || predicted < 1 {
		t.Fatalf("advantage: predicted %.1f, measured %.1f", predicted, measured)
	}
}
