package wrtring

import (
	"fmt"

	"github.com/rtnet/wrtring/internal/core"
	"github.com/rtnet/wrtring/internal/fault"
	"github.com/rtnet/wrtring/internal/radio"
	"github.com/rtnet/wrtring/internal/sim"
)

// This file wires the deterministic fault-injection layer (internal/fault)
// into the Scenario API: a declarative loss channel, a crash/restart
// schedule, and Poisson join/leave churn — all drawn from RNGs split off the
// scenario seed, so a faulted run stays byte-identical at any worker count.

// LossSpec declares the wireless loss channel as a Gilbert–Elliott chain.
// The common cases need only Mean (uniform loss) or Mean plus BurstLen
// (bursty loss); the explicit chain parameters override both when any is
// non-zero.
type LossSpec struct {
	// Mean is the long-run per-frame loss rate.
	Mean float64
	// BurstLen is the mean loss-burst length in slots; 0 means memoryless
	// (uniform) loss at rate Mean.
	BurstLen int64
	// PerCode keys one loss chain per CDMA code instead of one per directed
	// link (narrowband interference tracking a channel, not a path).
	PerCode bool

	// Explicit Gilbert–Elliott parameters (all per-slot / per-frame
	// probabilities); when any is set they are used verbatim.
	PGoodBad, PBadGood, LossGood, LossBad float64
}

func (l LossSpec) model() fault.GilbertElliott {
	var g fault.GilbertElliott
	switch {
	case l.PGoodBad != 0 || l.PBadGood != 0 || l.LossGood != 0 || l.LossBad != 0:
		g = fault.GilbertElliott{
			PGoodBad: l.PGoodBad, PBadGood: l.PBadGood,
			LossGood: l.LossGood, LossBad: l.LossBad,
		}
	case l.BurstLen > 0:
		g = fault.Burst(l.Mean, l.BurstLen)
	default:
		g = fault.Uniform(l.Mean)
	}
	g.PerCode = l.PerCode
	return g
}

// CrashOp schedules one silent station crash: Station freezes at slot At
// and, when For > 0, restarts For slots later. A restarted station cannot
// resume its old ring position (the survivors spliced around it); with RAP
// enabled it re-enters as a newcomer reclaiming its identity and quota.
type CrashOp struct {
	At      int64
	Station int
	For     int64
}

// FaultSpec is a scenario's complete fault-injection plan.
type FaultSpec struct {
	// Loss, when non-nil, installs the Gilbert–Elliott loss channel between
	// the medium and every receiver.
	Loss *LossSpec
	// Crashes schedules crash/freeze/restart events (WRT-Ring only).
	Crashes []CrashOp
	// JoinEvery / LeaveEvery enable Poisson churn: one newcomer joins on
	// average every JoinEvery slots, one random member leaves gracefully
	// every LeaveEvery slots (0 disables a process; WRT-Ring only, joins
	// require EnableRAP).
	JoinEvery  float64
	LeaveEvery float64
	// ChurnStart / ChurnStop bound the churn processes (Stop 0 = forever).
	ChurnStart, ChurnStop int64
	// MinMembers suppresses churn leaves at or below this ring size
	// (default 4, so the ring never leaves quorum voluntarily).
	MinMembers int
	// ChurnQuota is the quota churn newcomers request (default L=1, K1=1).
	ChurnQuota Quota
}

func (f *FaultSpec) scripted() bool {
	return f != nil && (len(f.Crashes) > 0 || f.JoinEvery > 0 || f.LeaveEvery > 0)
}

// faultTarget adapts the ring to the fault package's script interface.
type faultTarget struct {
	n      *Network
	rng    *sim.RNG
	quota  Quota
	nextID core.StationID
}

func (t *faultTarget) Kill(station int) {
	t.n.Ring.KillStation(core.StationID(station))
}

func (t *faultTarget) Restart(station int) {
	t.n.Ring.RestartStation(core.StationID(station))
}

func (t *faultTarget) Leave(station int) {
	r := t.n.Ring
	if station >= 0 {
		if st := r.Station(core.StationID(station)); st != nil {
			st.Leave()
		}
		return
	}
	// Churn leave: a uniformly random current member departs.
	order := r.Order()
	if len(order) == 0 {
		return
	}
	if st := r.Station(order[t.rng.Intn(len(order))]); st != nil && st.Active() {
		st.Leave()
	}
}

func (t *faultTarget) Join() {
	r := t.n.Ring
	order := r.Order()
	if len(order) == 0 {
		return
	}
	// Place the newcomer between a random member and its successor, like a
	// device carried into the room midway between two others.
	i := t.rng.Intn(len(order))
	a := r.Station(order[i])
	b := r.Station(order[(i+1)%len(order)])
	if a == nil || b == nil || !a.Active() || !b.Active() {
		return
	}
	pa, pb := t.n.Medium.PositionOf(a.Node), t.n.Medium.PositionOf(b.Node)
	mid := radio.Position{X: (pa.X + pb.X) / 2, Y: (pa.Y + pb.Y) / 2}
	node := t.n.Medium.AddNode(mid, t.n.Medium.RangeOf(a.Node), nil)
	id := t.nextID
	t.nextID++
	j := r.NewJoiner(id, node, radio.Code(2000+int(id)), t.quota)
	t.n.joiners = append(t.n.joiners, j)
}

func (t *faultTarget) Members() int { return t.n.Ring.N() }

// applyFault installs a scenario's fault plan: the loss injector on the
// medium and the crash/churn script on the kernel.
func (n *Network) applyFault(fs *FaultSpec) error {
	if fs == nil {
		return nil
	}
	if fs.Loss != nil {
		model := fs.Loss.model()
		if err := model.Validate(); err != nil {
			return err
		}
		if model.Enabled() {
			inj := fault.NewInjector(n.Kernel, n.RNG.Split(), model)
			inj.Bind(n.Medium)
			n.Injector = inj
		}
	}
	if !fs.scripted() {
		return nil
	}
	if n.Ring == nil {
		return fmt.Errorf("wrtring: fault crash/churn scripts are only supported on WRT-Ring")
	}
	if fs.JoinEvery > 0 && !n.Scenario.EnableRAP {
		return fmt.Errorf("wrtring: fault churn joins require EnableRAP")
	}
	for i, c := range fs.Crashes {
		if c.Station < 0 || c.Station >= n.Scenario.N {
			return fmt.Errorf("wrtring: fault crash %d targets station %d (N=%d)", i, c.Station, n.Scenario.N)
		}
	}
	quota := fs.ChurnQuota
	if quota.L == 0 && quota.K() == 0 {
		quota = Quota{L: 1, K1: 1}
	}
	tgt := &faultTarget{n: n, rng: n.RNG.Split(), quota: quota, nextID: 2000}
	script := fault.Script{
		Churn: fault.Churn{
			JoinEvery: fs.JoinEvery, LeaveEvery: fs.LeaveEvery,
			Start: fs.ChurnStart, Stop: fs.ChurnStop, MinMembers: fs.MinMembers,
		},
	}
	for _, c := range fs.Crashes {
		script.Crashes = append(script.Crashes, fault.Crash{At: c.At, Station: c.Station, For: c.For})
	}
	return fault.Apply(n.Kernel, tgt.rng, tgt, script)
}
