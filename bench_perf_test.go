// Simulator performance benchmarks: how many virtual slots per second the
// full stack (kernel + radio + MAC) sustains. These are engineering
// benchmarks, not paper claims; they justify the scale of the experiment
// harness (tens of sweeps × 100k-slot runs in seconds).
package wrtring

import (
	"fmt"
	"testing"
)

// BenchmarkSimulationThroughput measures wall time per simulated slot for
// an idle ring and a saturated one, across sizes.
func BenchmarkSimulationThroughput(b *testing.B) {
	for _, n := range []int{8, 32, 100} {
		for _, load := range []string{"idle", "saturated"} {
			b.Run(fmt.Sprintf("N=%d/%s", n, load), func(b *testing.B) {
				const slots = 5000
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := Scenario{N: n, L: 2, K: 2, Seed: 9, Duration: slots}
					if load == "saturated" {
						s.Sources = []Source{{Station: AllStations, Class: Premium,
							Dest: Opposite(), Preload: slots}}
					}
					net, err := Build(s)
					if err != nil {
						b.Fatal(err)
					}
					net.Run()
				}
				b.ReportMetric(float64(slots*b.N)/b.Elapsed().Seconds(), "slots/sec")
			})
		}
	}
}

// BenchmarkRunForN64 measures the steady-state slot hot path at N=64: the
// network is built (and warmed) outside the timed region, so the numbers are
// pure kernel+radio+MAC slot advancement — the denominator of every sweep,
// service and cluster throughput figure. Each op advances 1000 slots.
// The perf trajectory (benchmarks/bench_results.csv) tracks this benchmark;
// the allocation target for the steady state is 0 allocs/op.
func BenchmarkRunForN64(b *testing.B) {
	const opSlots = 1000
	cases := []struct {
		name string
		s    Scenario
	}{
		{"idle", Scenario{N: 64, L: 2, K: 2, Seed: 9, Duration: 1}},
		// Rate-balanced CBR so queues stay bounded: with L=2 circulating
		// slots and one-hop destinations the ring moves ~2 packets per slot
		// time, so 64 stations emitting every 64 slots (1 arrival/slot)
		// leaves headroom and the fifo backing arrays reach a steady size.
		{"cbr", Scenario{N: 64, L: 2, K: 2, Seed: 9, Duration: 1,
			Sources: []Source{{Station: AllStations, Kind: CBR, Class: Premium,
				Period: 64, Dest: Offset(1)}}}},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			net, err := Build(tc.s)
			if err != nil {
				b.Fatal(err)
			}
			net.Start()
			// Warm up: fills the kernel free list, the radio scratch buffers
			// and the station queues' backing arrays.
			net.Kernel.Run(net.Kernel.Now() + 4*opSlots)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				net.Kernel.Run(net.Kernel.Now() + opSlots)
			}
			b.StopTimer()
			b.ReportMetric(float64(opSlots*b.N)/b.Elapsed().Seconds(), "slots/sec")
			if res := net.Snapshot(); res.Dead {
				b.Fatal("ring died during benchmark")
			}
		})
	}
}

// TestLargeRingStress runs a 100-station ring for 200k slots with churn —
// the scale headroom check (skipped with -short).
func TestLargeRingStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	net, err := Build(Scenario{
		N: 100, L: 1, K: 1, Seed: 10, Duration: 200_000,
		RangeChords: 3.0,
		Sources: []Source{{Station: AllStations, Kind: Poisson, Class: Premium,
			Mean: 500, Dest: Uniform()}},
		Churn: []ChurnOp{
			{At: 50_000, Kind: Kill, Station: 30},
			{At: 100_000, Kind: Kill, Station: 60},
			{At: 150_000, Kind: Leave, Station: 90},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if res.Dead {
		t.Fatal("100-station ring died")
	}
	if res.N != 97 {
		t.Fatalf("final N = %d", res.N)
	}
	if res.MaxRotation >= res.RotationBound {
		t.Fatalf("bound violated at scale: %d >= %d", res.MaxRotation, res.RotationBound)
	}
	if res.Splices != 3 {
		t.Fatalf("splices = %d, want 3", res.Splices)
	}
	if res.Delivered[Premium] == 0 {
		t.Fatal("no deliveries at scale")
	}
}
