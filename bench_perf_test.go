// Simulator performance benchmarks: how many virtual slots per second the
// full stack (kernel + radio + MAC) sustains. These are engineering
// benchmarks, not paper claims; they justify the scale of the experiment
// harness (tens of sweeps × 100k-slot runs in seconds).
package wrtring

import (
	"fmt"
	"testing"
)

// BenchmarkSimulationThroughput measures wall time per simulated slot for
// an idle ring and a saturated one, across sizes.
func BenchmarkSimulationThroughput(b *testing.B) {
	for _, n := range []int{8, 32, 100} {
		for _, load := range []string{"idle", "saturated"} {
			b.Run(fmt.Sprintf("N=%d/%s", n, load), func(b *testing.B) {
				const slots = 5000
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					s := Scenario{N: n, L: 2, K: 2, Seed: 9, Duration: slots}
					if load == "saturated" {
						s.Sources = []Source{{Station: AllStations, Class: Premium,
							Dest: Opposite(), Preload: slots}}
					}
					net, err := Build(s)
					if err != nil {
						b.Fatal(err)
					}
					net.Run()
				}
				b.ReportMetric(float64(slots*b.N)/b.Elapsed().Seconds(), "slots/sec")
			})
		}
	}
}

// TestLargeRingStress runs a 100-station ring for 200k slots with churn —
// the scale headroom check (skipped with -short).
func TestLargeRingStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	net, err := Build(Scenario{
		N: 100, L: 1, K: 1, Seed: 10, Duration: 200_000,
		RangeChords: 3.0,
		Sources: []Source{{Station: AllStations, Kind: Poisson, Class: Premium,
			Mean: 500, Dest: Uniform()}},
		Churn: []ChurnOp{
			{At: 50_000, Kind: Kill, Station: 30},
			{At: 100_000, Kind: Kill, Station: 60},
			{At: 150_000, Kind: Leave, Station: 90},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := net.Run()
	if res.Dead {
		t.Fatal("100-station ring died")
	}
	if res.N != 97 {
		t.Fatalf("final N = %d", res.N)
	}
	if res.MaxRotation >= res.RotationBound {
		t.Fatalf("bound violated at scale: %d >= %d", res.MaxRotation, res.RotationBound)
	}
	if res.Splices != 3 {
		t.Fatalf("splices = %d, want 3", res.Splices)
	}
	if res.Delivered[Premium] == 0 {
		t.Fatal("no deliveries at scale")
	}
}
