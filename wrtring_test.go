package wrtring

import "testing"

func TestRunQuickScenario(t *testing.T) {
	res, err := Run(Scenario{
		N: 8, L: 2, K: 2, Duration: 5000, Seed: 1,
		Sources: []Source{{
			Station: AllStations, Kind: CBR, Class: Premium,
			Period: 50, Dest: Opposite(),
		}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Dead {
		t.Fatalf("ring died")
	}
	if res.Delivered[Premium] == 0 {
		t.Fatalf("no premium deliveries")
	}
	if res.MaxRotation >= res.RotationBound {
		t.Fatalf("rotation %d >= bound %d", res.MaxRotation, res.RotationBound)
	}
	if res.Rounds < 100 {
		t.Fatalf("rounds = %d", res.Rounds)
	}
}

func TestRunTPTScenario(t *testing.T) {
	res, err := Run(Scenario{
		Protocol: TPT, N: 8, L: 2, K: 2, Duration: 5000, Seed: 1,
		Sources: []Source{{
			Station: AllStations, Kind: CBR, Class: Premium,
			Period: 50, Dest: Opposite(),
		}},
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Dead {
		t.Fatalf("tree died")
	}
	if res.Delivered[Premium] == 0 {
		t.Fatalf("no sync deliveries")
	}
	if res.MaxRotation > res.RotationBound {
		t.Fatalf("rotation %d > 2·TTRT %d", res.MaxRotation, res.RotationBound)
	}
}

func TestHopsPerRoundMatchesPaper(t *testing.T) {
	// §3.2.1: SAT travels N links per round, token 2·(N−1).
	for _, n := range []int{5, 10, 20} {
		ring, err := Run(Scenario{N: n, Duration: 4000, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if ring.HopsPerRound != float64(n) {
			t.Fatalf("N=%d: SAT hops/round = %.1f, want %d", n, ring.HopsPerRound, n)
		}
		tree, err := Run(Scenario{Protocol: TPT, N: n, Duration: 4000, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		want := float64(2 * (n - 1))
		if tree.HopsPerRound < want-0.5 || tree.HopsPerRound > want+0.5 {
			t.Fatalf("N=%d: token hops/round = %.2f, want %.0f", n, tree.HopsPerRound, want)
		}
	}
}

func TestDisableCDMAKillsThroughput(t *testing.T) {
	// E1 / Figure 1: without per-station codes, concurrent ring
	// transmissions collide and stations receive corrupted data.
	with, err := Run(Scenario{N: 8, Duration: 4000, Seed: 3, Sources: []Source{{
		Station: AllStations, Kind: CBR, Class: BestEffort, Period: 20, Dest: Offset(1),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(Scenario{N: 8, Duration: 4000, Seed: 3, DisableCDMA: true,
		DisableRecovery: true, // the SAT dies under collisions; isolate the data path
		Sources: []Source{{
			Station: AllStations, Kind: CBR, Class: BestEffort, Period: 20, Dest: Offset(1),
		}}})
	if err != nil {
		t.Fatal(err)
	}
	if with.RadioCollisions != 0 {
		t.Fatalf("CDMA run saw %d collisions", with.RadioCollisions)
	}
	if without.RadioCollisions == 0 {
		t.Fatalf("no collisions without CDMA")
	}
	if without.Throughput >= with.Throughput/4 {
		t.Fatalf("collision-dominated throughput %.4f not far below CDMA %.4f",
			without.Throughput, with.Throughput)
	}
}

func TestBoundsForMatchesPaperFormulas(t *testing.T) {
	s := Scenario{N: 10, L: 2, K: 2}
	satRT, tokenRT, satLoss, tokenLoss := BoundsFor(s)
	if satRT != 10 {
		t.Fatalf("satRT = %d", satRT)
	}
	if tokenRT != 18 {
		t.Fatalf("tokenRT = %d", tokenRT)
	}
	// SAT_TIME = S + Trap + 2·N·(l+k) = 10 + 0 + 80 = 90.
	if satLoss != 90 {
		t.Fatalf("satLoss = %d", satLoss)
	}
	// TTRT_min = ΣH + 2(N−1) = 40 + 18 = 58; reaction bound 116.
	if tokenLoss != 116 {
		t.Fatalf("tokenLoss = %d", tokenLoss)
	}
	if satLoss >= tokenLoss {
		t.Fatalf("§3.3 claim SAT_TIME < 2·TTRT violated: %d >= %d", satLoss, tokenLoss)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	s := Scenario{N: 10, Duration: 8000, Seed: 99, EnableRAP: true,
		Sources: []Source{{Station: AllStations, Kind: Poisson, Class: Premium,
			Mean: 60, Dest: Uniform()}}}
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if *a != *b {
		t.Fatalf("results differ:\n%+v\n%+v", a, b)
	}
}
